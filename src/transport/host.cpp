// speakup-lint: hot-path (allocation-free steady state; growth sites must
// be amortized and allowlisted in tools/lint_allowlist.txt)
#include "transport/host.hpp"

#include "util/log.hpp"

namespace speakup::transport {

Host::~Host() {
  for (std::uint32_t slot = 0; slot < states_.size(); ++slot) {
    // A destroy event left pending would fire into a dead host.
    if (states_[slot] == SlotState::kReleasing) loop().cancel(release_ev_[slot]);
    if (states_[slot] != SlotState::kEmpty) conn_at(slot)->~TcpConnection();
  }
}

TcpConnection& Host::connect(net::NodeId dst, std::uint32_t dst_port) {
  TcpConnection& conn = emplace_connection(alloc_port(), dst, dst_port, /*initiator=*/true);
  conn.start_handshake();
  return conn;
}

void Host::listen(std::uint32_t port, std::function<void(TcpConnection&)> on_accept) {
  util::require(listeners_.find(port) == listeners_.end(),
                "port already has a listener on host " + name());
  listeners_[port] = std::move(on_accept);
}

std::uint32_t Host::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(states_.size());
  if (slot % kChunk == 0) {
    chunks_.push_back(std::make_unique<RawSlot[]>(kChunk));
    // Reserve the whole chunk's metadata now: the slot high-water mark can
    // rise mid-run (a deferred release overlapping an immediate reconnect),
    // and that moment must not touch the allocator — only chunk boundaries
    // may (the pooled engine's steady state stays allocation-free).
    states_.reserve(chunks_.size() * kChunk);
    release_ev_.reserve(chunks_.size() * kChunk);
    free_.reserve(chunks_.size() * kChunk);
  }
  states_.push_back(SlotState::kEmpty);
  release_ev_.emplace_back();
  return slot;
}

std::size_t Host::find_index(std::uint32_t local_port, net::NodeId remote,
                             std::uint32_t remote_port) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = key_hash(local_port, remote, remote_port) & mask;
  for (;;) {
    const TableEntry& e = table_[i];
    if (e.slot == kNilSlot ||
        (e.local_port == local_port && e.remote == remote && e.remote_port == remote_port)) {
      return i;
    }
    i = (i + 1) & mask;
  }
}

void Host::table_grow() {
  std::vector<TableEntry> old;
  old.swap(table_);
  table_.resize(old.empty() ? 16 : old.size() * 2);
  for (const TableEntry& e : old) {
    if (e.slot == kNilSlot) continue;
    std::size_t i = probe_of(e);
    const std::size_t mask = table_.size() - 1;
    while (table_[i].slot != kNilSlot) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void Host::table_insert(std::uint32_t local_port, net::NodeId remote,
                        std::uint32_t remote_port, std::uint32_t slot) {
  // Grow at ~70% load so probe runs stay short.
  if (table_.empty() || (table_size_ + 1) * 10 > table_.size() * 7) table_grow();
  const std::size_t i = find_index(local_port, remote, remote_port);
  SPEAKUP_ASSERT(table_[i].slot == kNilSlot);
  table_[i] = TableEntry{local_port, remote, remote_port, slot};
  ++table_size_;
  SPEAKUP_AUDIT_ONLY(maybe_audit();)
}

void Host::table_erase(std::uint32_t local_port, net::NodeId remote,
                       std::uint32_t remote_port) {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = find_index(local_port, remote, remote_port);
  SPEAKUP_ASSERT(table_[i].slot != kNilSlot);
  table_[i].slot = kNilSlot;
  --table_size_;
  // Backward-shift deletion: re-seat any displaced entries in the cluster
  // so lookups never need tombstones.
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (table_[j].slot == kNilSlot) break;
    const std::size_t ideal = probe_of(table_[j]);
    if (((j - ideal) & mask) >= ((j - i) & mask)) {
      table_[i] = table_[j];
      table_[j].slot = kNilSlot;
      i = j;
    }
  }
}

#if SPEAKUP_AUDIT_ENABLED
void Host::audit() const {
  SPEAKUP_AUDIT_CHECK(table_.empty() || (table_.size() & (table_.size() - 1)) == 0,
                      "Host: demux table size must be a power of two");
  std::vector<std::uint8_t> tabled(states_.size(), 0);
  std::size_t occupied = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const TableEntry& e = table_[i];
    if (e.slot == kNilSlot) continue;
    ++occupied;
    SPEAKUP_AUDIT_CHECK(e.slot < states_.size(), "Host: table entry slot out of range");
    SPEAKUP_AUDIT_CHECK(states_[e.slot] != SlotState::kEmpty,
                        "Host: table entry must point at a constructed connection");
    SPEAKUP_AUDIT_CHECK(!tabled[e.slot], "Host: slot tabled more than once");
    tabled[e.slot] = 1;
    // Probe-chain reachability: a lookup starting at the key's home bucket
    // must land on this very entry (backward-shift deletion's contract).
    SPEAKUP_AUDIT_CHECK(find_index(e.local_port, e.remote, e.remote_port) == i,
                        "Host: table entry unreachable from its home probe");
    const TcpConnection* conn = conn_at(e.slot);
    SPEAKUP_AUDIT_CHECK(conn->local_port() == e.local_port && conn->remote_node() == e.remote &&
                            conn->remote_port() == e.remote_port,
                        "Host: table key must match the connection's endpoints");
  }
  SPEAKUP_AUDIT_CHECK(occupied == table_size_,
                      "Host: table_size_ must count the occupied entries");
  std::size_t empty_slots = 0;
  for (std::uint32_t slot = 0; slot < states_.size(); ++slot) {
    switch (states_[slot]) {
      case SlotState::kEmpty:
        ++empty_slots;
        SPEAKUP_AUDIT_CHECK(!tabled[slot], "Host: empty slot must not be tabled");
        break;
      case SlotState::kLive:
        SPEAKUP_AUDIT_CHECK(tabled[slot], "Host: live slot must be tabled");
        break;
      case SlotState::kReleasing:
        SPEAKUP_AUDIT_CHECK(tabled[slot], "Host: releasing slot stays tabled until destroyed");
        SPEAKUP_AUDIT_CHECK(release_ev_[slot].pending(),
                            "Host: releasing slot must hold a pending destroy event");
        break;
    }
  }
  std::vector<std::uint8_t> freed(states_.size(), 0);
  for (const std::uint32_t slot : free_) {
    SPEAKUP_AUDIT_CHECK(slot < states_.size(), "Host: free-list slot out of range");
    SPEAKUP_AUDIT_CHECK(states_[slot] == SlotState::kEmpty, "Host: free-list slot must be empty");
    SPEAKUP_AUDIT_CHECK(!freed[slot], "Host: slot freed more than once");
    freed[slot] = 1;
  }
  SPEAKUP_AUDIT_CHECK(free_.size() == empty_slots,
                      "Host: free list must cover exactly the empty slots");
}

void Host::corrupt_table_for_test() {
  for (TableEntry& e : table_) {
    if (e.slot != kNilSlot) {
      e.slot = kNilSlot;
      --table_size_;
      return;
    }
  }
}
#endif

TcpConnection& Host::emplace_connection(std::uint32_t local_port, net::NodeId remote,
                                        std::uint32_t remote_port, bool initiator) {
  SPEAKUP_ASSERT(find_connection(local_port, remote, remote_port) == nullptr);
  const std::uint32_t slot = acquire_slot();
  TcpConnection* conn = ::new (static_cast<void*>(chunks_[slot / kChunk][slot % kChunk].bytes))
      TcpConnection(*this, local_port, remote, remote_port, tcp_cfg_, initiator);
  states_[slot] = SlotState::kLive;
  table_insert(local_port, remote, remote_port, slot);
  ++connections_created_;
  return *conn;
}

TcpConnection* Host::find_connection(std::uint32_t local_port, net::NodeId remote,
                                     std::uint32_t remote_port) const {
  if (table_.empty()) return nullptr;
  const std::size_t i = find_index(local_port, remote, remote_port);
  return table_[i].slot == kNilSlot ? nullptr : conn_at(table_[i].slot);
}

void Host::on_packet(net::Packet p) {
  SPEAKUP_ASSERT(p.dst == id());
  if (TcpConnection* conn = find_connection(p.dst_port, p.src, p.src_port)) {
    conn->on_packet(p);
    return;
  }
  // No matching connection. A SYN to a listening port spawns one.
  if (p.kind == net::PacketKind::kSyn) {
    const auto lit = listeners_.find(p.dst_port);
    if (lit != listeners_.end()) {
      TcpConnection& conn =
          emplace_connection(p.dst_port, p.src, p.src_port, /*initiator=*/false);
      // Link the two endpoints so the message layer can pass descriptors.
      auto& src_host = dynamic_cast<Host&>(network().node(p.src));
      if (TcpConnection* initiator = src_host.find_connection(p.src_port, id(), p.dst_port)) {
        conn.link_peer(initiator);
        initiator->link_peer(&conn);
      }
      lit->second(conn);  // accept callback may set callbacks / write
      conn.start_passive();
      return;
    }
  }
  // Anything else aimed at nothing gets an abortive reply, so stale
  // retransmissions from half-closed peers clean themselves up.
  if (p.kind != net::PacketKind::kRst) {
    send_packet(net::make_control_packet(id(), p.dst_port, p.src, p.src_port,
                                         net::PacketKind::kRst));
  }
}

void Host::release(TcpConnection* conn) {
  SPEAKUP_ASSERT(conn != nullptr && conn->closed());
  const std::size_t i =
      find_index(conn->local_port(), conn->remote_node(), conn->remote_port());
  SPEAKUP_ASSERT(table_[i].slot != kNilSlot && conn_at(table_[i].slot) == conn);
  const std::uint32_t slot = table_[i].slot;
  SPEAKUP_ASSERT(states_[slot] == SlotState::kLive);
  states_[slot] = SlotState::kReleasing;
  // Deferred: the connection may be deep in its own call stack right now.
  // The table entry stays until the event fires, exactly like the previous
  // map-based teardown, so demux keeps finding the closed connection.
  release_ev_[slot] = loop().schedule(Duration::zero(), [this, slot] {
    TcpConnection* victim = conn_at(slot);
    table_erase(victim->local_port(), victim->remote_node(), victim->remote_port());
    victim->~TcpConnection();
    states_[slot] = SlotState::kEmpty;
    free_.push_back(slot);
    SPEAKUP_AUDIT_ONLY(maybe_audit();)
  });
}

}  // namespace speakup::transport
