// Table 1: summary of the paper's main evaluation results, re-measured.
//
//   1. The thinner allocates the server in rough proportion to client
//      bandwidths (§7.2, §7.5).
//   2. The server needs only ~15% provisioning beyond the bandwidth-
//      proportional ideal to serve all good requests (§7.3, §7.4).
//   3. The unoptimized thinner sinks ~1.5 Gbit/s of payment traffic (§7.1).
//   4. On a bottleneck link, speak-up traffic crowds out other traffic
//      (§7.6, §7.7).
//
// Each row below is a quick re-measurement; the per-figure binaries carry
// the detailed versions. The scenario rows (1, 2, 4) load their grid from
// scenarios/tab1.json — the same file `speakup run` executes — and run on
// one Runner pool up front.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "core/auction_thinner.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"

namespace {

using namespace speakup;

void queue_scenarios(exp::Runner& runner) {
  exp::ScenarioFile file = bench::load_scenarios("tab1.json");
  if (bench::full_mode()) {
    // Rows 1 and 2 stretch to the paper's 600 s; row 4's bottleneck
    // scenarios keep their fixed 90 s window.
    for (exp::LabeledScenario& s : file.scenarios) {
      if (s.label.rfind("row4", 0) != 0) s.config.duration = Duration::seconds(600.0);
    }
  }
  file.queue_on(runner);
}

void row1(const exp::Runner& runner) {
  const exp::ExperimentResult& r = runner.result("row1");
  std::printf("1. proportional allocation:   alloc(good) = %.2f for G=B (ideal 0.50,\n"
              "   paper ~0.42-0.48 measured)  [details: fig2, fig6, fig7]\n",
              r.allocation_good);
}

void row2(const exp::Runner& runner) {
  // The capacity sweep comes from scenarios/tab1.json ("row2/*" labels, in
  // file order), so editing the JSON grid never leaves this report stale.
  double satisfied_at = -1;
  for (const exp::RunOutcome& o : runner.outcomes()) {
    if (o.label.rfind("row2/", 0) != 0) continue;
    if (o.result.fraction_good_served >= 0.99) {
      satisfied_at = o.config.capacity_rps;
      break;
    }
  }
  if (satisfied_at > 0) {
    std::printf("2. provisioning above ideal:  all good demand served at c = %.0f\n"
                "   (+%.0f%% over c_id = 100; paper: +15%%)  [details: sec7_4]\n",
                satisfied_at, satisfied_at - 100.0);
  } else {
    std::printf("2. provisioning above ideal:  > +55%% in this quick run  [details: sec7_4]\n");
  }
}

// Row 3: thinner byte-sink rate (quick wall-clock measurement of the whole
// simulated stack; see tab1_thinner_capacity for the benchmark version).
// This row measures host speed, not a scenario, so it stays hand-built.
void row3() {
  sim::EventLoop loop;
  net::Network net(loop);
  auto& sw = net.add_switch("sw");
  auto& th = net.add_node<transport::Host>("thinner");
  net.connect(th, sw, net::LinkSpec{Bandwidth::gbps(100.0), Duration::micros(100), 64'000'000});
  core::AuctionThinner::Config tc;
  tc.capacity_rps = 0.001;
  core::AuctionThinner thinner(th, tc, util::RngStream(1, "srv"));
  std::vector<std::unique_ptr<http::MessageStream>> streams;
  for (int i = 0; i < 32; ++i) {
    auto& h = net.add_node<transport::Host>("payer" + std::to_string(i));
    net.connect(h, sw, net::LinkSpec{Bandwidth::mbps(200.0), Duration::micros(200), 1'000'000});
    net.build_routes();
    auto& req = h.connect(th.id(), 80);
    auto rs = std::make_unique<http::MessageStream>(req);
    rs->send(http::Message{.type = http::MessageType::kRequest,
                           .request_id = static_cast<std::uint64_t>(i) + 1});
    streams.push_back(std::move(rs));
    auto& pay = h.connect(th.id(), 81);
    auto ps = std::make_unique<http::MessageStream>(pay);
    ps->send(http::Message{.type = http::MessageType::kPayOpen,
                           .request_id = static_cast<std::uint64_t>(i) + 1});
    ps->send(http::Message{.type = http::MessageType::kPostData,
                           .request_id = static_cast<std::uint64_t>(i) + 1,
                           .body = megabytes(100'000)});
    streams.push_back(std::move(ps));
  }
  loop.run_until(SimTime::zero() + Duration::seconds(0.5));  // warm up
  const Bytes before = thinner.stats().payment_bytes_total;
  const auto t0 = std::chrono::steady_clock::now();
  double sim_t = 0.5;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() < 2.0) {
    sim_t += 0.1;
    loop.run_until(SimTime::zero() + Duration::seconds(sim_t));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double mbps =
      static_cast<double>(thinner.stats().payment_bytes_total - before) * 8.0 / wall / 1e6;
  std::printf("3. thinner capacity:          sinks %.0f Mbit/s of simulated payment "
              "traffic\n   per wall-clock second on this host (paper: 1451 Mbit/s "
              "real traffic)  [details: tab1_thinner_capacity]\n",
              mbps);
}

void row4(const exp::Runner& runner) {
  const double off = runner.result("row4/off").collateral_latencies.mean();
  const double on = runner.result("row4/on").collateral_latencies.mean();
  std::printf("4. bottleneck crowding:       8 KB downloads inflate %.1fx when sharing\n"
              "   a 1 Mbit/s link with speak-up traffic (paper: ~4.5-6x)  [details: "
              "fig8, fig9]\n",
              off > 0 ? on / off : 0.0);
}

}  // namespace

int main() {
  bench::print_banner("Table 1", "summary of main evaluation results");
  exp::Runner runner;
  queue_scenarios(runner);
  bench::run_all(runner);
  row1(runner);
  std::fflush(stdout);
  row2(runner);
  std::fflush(stdout);
  row3();
  std::fflush(stdout);
  row4(runner);
  return 0;
}
