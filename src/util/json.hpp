// Minimal dependency-free JSON, for scenario files and result persistence.
//
// One value type (`util::json::Value`) covers null/bool/number/string/
// array/object; `parse()` reports errors with line and column so a typo in
// a hand-written scenario file points at the offending character; `dump()`
// emits deterministic output (objects keep insertion order, doubles use
// shortest round-trip formatting) so serialized results are diffable.
//
// This is deliberately a subset of JSON tooling: no SAX interface, no
// comments, no NaN/Inf extensions. Scenario and result files are small —
// clarity of errors beats parse throughput here.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace speakup::util::json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

[[nodiscard]] const char* type_name(Type t);

/// Thrown by parse() (with line/column context) and by the typed accessors
/// below (with the offending type).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error("json: " + what) {}
};

class Value {
 public:
  /// Objects preserve insertion order: scenario error messages and dumped
  /// result files follow the order keys were written.
  using Object = std::vector<std::pair<std::string, Value>>;
  using Array = std::vector<Value>;

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int i) : type_(Type::kNumber), num_(i) {}
  Value(std::int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw Error naming the actual type on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// Number that must be integral (no fractional part); throws otherwise.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array() {
    return const_cast<Array&>(static_cast<const Value*>(this)->as_array());
  }
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] Value* find(std::string_view key) {
    return const_cast<Value*>(static_cast<const Value*>(this)->find(key));
  }

  /// Append/overwrite an object member (builder-style serialization).
  Value& set(std::string_view key, Value v);
  /// Removes an object member; returns whether it was present.
  bool erase(std::string_view key);
  /// Append an array element.
  Value& push_back(Value v);

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits compact one-line output. Deterministic: key order is
  /// insertion order, numbers round-trip exactly.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses a complete JSON document (trailing garbage is an error). Errors
/// read like "json: line 4, column 17: expected ',' or '}'".
[[nodiscard]] Value parse(std::string_view text);

/// Serializes a string with JSON escaping, including the quotes.
[[nodiscard]] std::string quote(std::string_view s);

/// Shortest decimal form that round-trips the double (integral values get
/// no decimal point). Used for dump() and anywhere results must be
/// byte-stable across writers.
[[nodiscard]] std::string number_to_string(double v);

}  // namespace speakup::util::json
