// Tests for the adversarial tournament subsystem (exp/tournament.hpp and
// the `speakup tournament` CLI command).
//
// Unit level: spec parsing (registry validation, attacker-group checks),
// the defense-major expansion order, and score_tournament's rejection of
// incomplete or mismatched sweeps.
//
// Property level, on the checked-in 4x4 scenarios/tournament_small.json:
// matrix invariants (|D| x |S| cells, complete labels), "none" weakly
// dominated in every attacker column, the §7.4 ordering (auction serves
// good clients at least as well as retry against defectors), and
// determinism — the sweep CSV is byte-identical across thread counts and
// across shard+merge.
//
// Golden level: the payoff CSV and Pareto report bytes are pinned, so any
// change to scoring, formatting, or the simulation's dynamics shows up in
// review as a diff of this file.
//
// End to end, against the real binary (SPEAKUP_CLI_BIN): the single-process
// tournament, the --expand-only + shard + merge + --score path, and a
// dispatch run with an injected worker SIGKILL must all produce the same
// payoff bytes.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "client/strategy.hpp"
#include "core/front_end_factory.hpp"
#include "exp/result_writer.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "exp/tournament.hpp"
#include "util/json.hpp"

namespace speakup {
namespace {

namespace json = util::json;

std::string spec_path() {
  return std::string(SPEAKUP_SCENARIO_DIR) + "/tournament_small.json";
}

const exp::TournamentSpec& small_spec() {
  static const exp::TournamentSpec spec = exp::load_tournament_spec(spec_path());
  return spec;
}

/// Runs the small tournament's sweep (or one shard of it) in-process and
/// returns the ResultWriter CSV.
std::string sweep_csv(int jobs, int shard_index = 0, int shard_count = 1) {
  const exp::ScenarioFile file =
      exp::parse_scenario_file(exp::tournament_scenarios_json(small_spec()));
  const std::vector<exp::LabeledScenario> slice = file.shard(shard_index, shard_count);
  exp::Runner runner;
  exp::ScenarioFile::queue_on(runner, slice);
  runner.run_all(jobs);
  exp::ResultWriter writer;
  for (std::size_t i = 0; i < runner.outcomes().size(); ++i) {
    writer.add(slice[i].index, runner.outcomes()[i]);
  }
  std::ostringstream os;
  writer.write_csv(os);
  return os.str();
}

/// The scored 4x4 matrix, computed once per process.
const exp::PayoffMatrix& small_matrix() {
  static const exp::PayoffMatrix m =
      exp::score_tournament(small_spec(), sweep_csv(/*jobs=*/4));
  return m;
}

std::size_t row_of(const exp::PayoffMatrix& m, const std::string& defense) {
  for (std::size_t d = 0; d < m.defenses.size(); ++d) {
    if (m.defenses[d] == defense) return d;
  }
  ADD_FAILURE() << "no defense row '" << defense << "'";
  return 0;
}

// ---------------------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------------------

TEST(TournamentSpec, ParsesTheCheckedInSpec) {
  const exp::TournamentSpec& spec = small_spec();
  EXPECT_EQ(spec.defenses,
            (std::vector<std::string>{"none", "retry", "auction", "elastic"}));
  EXPECT_EQ(spec.strategies,
            (std::vector<std::string>{"poisson", "defector", "recon", "switcher"}));
  EXPECT_EQ(spec.attacker_group, 1u);
}

TEST(TournamentSpec, RejectsBadDocuments) {
  const char* bad[] = {
      // not an object
      "[]",
      // unknown top-level key
      R"({"base": {"groups": []}, "bogus": 1})",
      // missing base
      R"({"defenses": ["none"]})",
      // base without groups
      R"({"base": {"capacity_rps": 5}})",
      // attacker group out of range
      R"({"attacker_group": 2, "base": {"groups": [
           {"label": "g", "count": 1, "workload": "good"},
           {"label": "b", "count": 1, "workload": "bad"}]}})",
      // unregistered defense
      R"({"defenses": ["no-such-defense"], "base": {"groups": [
           {"label": "g", "count": 1, "workload": "good"},
           {"label": "b", "count": 1, "workload": "bad"}]}})",
      // unregistered strategy
      R"({"strategies": ["no-such-strategy"], "base": {"groups": [
           {"label": "g", "count": 1, "workload": "good"},
           {"label": "b", "count": 1, "workload": "bad"}]}})",
      // duplicate defense row
      R"({"defenses": ["none", "none"], "base": {"groups": [
           {"label": "g", "count": 1, "workload": "good"},
           {"label": "b", "count": 1, "workload": "bad"}]}})",
      // per-scenario directive smuggled into base
      R"({"base": {"seeds": 3, "groups": [
           {"label": "g", "count": 1, "workload": "good"},
           {"label": "b", "count": 1, "workload": "bad"}]}})",
  };
  for (const char* doc : bad) {
    EXPECT_THROW((void)exp::parse_tournament_spec(doc), exp::ScenarioError) << doc;
  }
}

TEST(TournamentSpec, OmittedAxesDefaultToTheFullRegistries) {
  const exp::TournamentSpec spec = exp::parse_tournament_spec(
      R"({"base": {"duration_s": 1, "groups": [
           {"label": "g", "count": 1, "workload": {"preset": "good"}},
           {"label": "b", "count": 1, "workload": {"preset": "bad"}}]}})");
  EXPECT_EQ(spec.defenses, core::FrontEndFactory::instance().names());
  EXPECT_EQ(spec.strategies, client::StrategyFactory::instance().names());
}

// ---------------------------------------------------------------------------
// Expansion.
// ---------------------------------------------------------------------------

TEST(TournamentExpansion, CellsAreCompleteAndDefenseMajor) {
  const exp::TournamentSpec& spec = small_spec();
  const exp::ScenarioFile file =
      exp::parse_scenario_file(exp::tournament_scenarios_json(spec));
  ASSERT_EQ(file.scenarios.size(), spec.defenses.size() * spec.strategies.size());
  for (std::size_t d = 0; d < spec.defenses.size(); ++d) {
    for (std::size_t s = 0; s < spec.strategies.size(); ++s) {
      const std::size_t index = d * spec.strategies.size() + s;
      const exp::LabeledScenario& cell = file.scenarios[index];
      EXPECT_EQ(cell.index, index);
      EXPECT_EQ(cell.label, spec.defenses[d] + "|" + spec.strategies[s]);
      EXPECT_EQ(cell.config.defense_name(), spec.defenses[d]);
      ASSERT_EQ(cell.config.groups.size(), 2u);
      EXPECT_EQ(cell.config.groups[1].workload.strategy, spec.strategies[s]);
      // The strategy column makes every cell row self-describing
      // (strategy_names() dedupes, so the all-poisson cell is just "poisson").
      const std::string expected = spec.strategies[s] == "poisson"
                                       ? "poisson"
                                       : "poisson+" + spec.strategies[s];
      EXPECT_EQ(cell.config.strategy_names(), expected);
    }
  }
}

TEST(TournamentExpansion, IsDeterministicBytes) {
  EXPECT_EQ(exp::tournament_scenarios_json(small_spec()),
            exp::tournament_scenarios_json(small_spec()));
}

// ---------------------------------------------------------------------------
// Determinism of the sweep itself.
// ---------------------------------------------------------------------------

TEST(TournamentDeterminism, SweepCsvIsByteIdenticalAcrossJobCounts) {
  EXPECT_EQ(sweep_csv(/*jobs=*/1), sweep_csv(/*jobs=*/4));
}

TEST(TournamentDeterminism, ShardedSweepMergesToUnshardedBytes) {
  const std::string unsharded = sweep_csv(/*jobs=*/2);
  const std::string merged = exp::ResultWriter::merge_csv(
      {sweep_csv(2, 0, 3), sweep_csv(2, 1, 3), sweep_csv(2, 2, 3)});
  EXPECT_EQ(merged, unsharded);
}

// ---------------------------------------------------------------------------
// Matrix properties.
// ---------------------------------------------------------------------------

TEST(TournamentMatrix, HasOneCellPerDefenseStrategyPair) {
  const exp::PayoffMatrix& m = small_matrix();
  ASSERT_EQ(m.cells.size(), m.defenses.size() * m.strategies.size());
  for (std::size_t d = 0; d < m.defenses.size(); ++d) {
    for (std::size_t s = 0; s < m.strategies.size(); ++s) {
      const exp::PayoffCell& c = m.cell(d, s);
      EXPECT_EQ(c.index, d * m.strategies.size() + s);
      EXPECT_EQ(c.defense, m.defenses[d]);
      EXPECT_EQ(c.strategy, m.strategies[s]);
      EXPECT_EQ(c.fingerprint.size(), 16u) << c.fingerprint;
      EXPECT_GE(c.good_fraction, 0.0);
      EXPECT_LE(c.good_fraction, 1.0);
      EXPECT_GT(c.attacker_bytes, 0);  // attackers always at least send requests
    }
  }
}

// The paper's core claim, as a matrix property: an undefended server is
// never the right answer — in every attacker column some defense serves the
// good population at least as well, and overall "none" is weakly dominated.
TEST(TournamentMatrix, NoneIsWeaklyDominatedInEveryAttackerColumn) {
  const exp::PayoffMatrix& m = small_matrix();
  const std::size_t none = row_of(m, "none");
  for (std::size_t s = 0; s < m.strategies.size(); ++s) {
    double best_other = 0.0;
    for (std::size_t d = 0; d < m.defenses.size(); ++d) {
      if (d != none) best_other = std::max(best_other, m.cell(d, s).good_fraction);
    }
    EXPECT_GE(best_other, m.cell(none, s).good_fraction) << m.strategies[s];
  }
  bool dominated = false;
  for (std::size_t d = 0; d < m.defenses.size(); ++d) {
    dominated = dominated || (d != none && m.dominates(d, none));
  }
  EXPECT_TRUE(dominated);
  for (const std::size_t d : m.pareto_rows()) EXPECT_NE(d, none);
}

// §7.4 regression in matrix form: against defectors the explicit payment
// channel is at least as good for the good population as the retry thinner.
TEST(TournamentMatrix, AuctionServesGoodAtLeastAsWellAsRetryAgainstDefectors) {
  const exp::PayoffMatrix& m = small_matrix();
  const std::size_t defector =
      static_cast<std::size_t>(std::find(m.strategies.begin(), m.strategies.end(),
                                         "defector") -
                               m.strategies.begin());
  ASSERT_LT(defector, m.strategies.size());
  EXPECT_GE(m.cell(row_of(m, "auction"), defector).good_fraction,
            m.cell(row_of(m, "retry"), defector).good_fraction);
}

// ---------------------------------------------------------------------------
// Scoring rejects sweeps that do not match the spec.
// ---------------------------------------------------------------------------

TEST(TournamentScore, RejectsMissingFailedAndMislabeledCells) {
  const std::string csv = sweep_csv(2);
  // Drop the last row: a missing cell.
  const std::string truncated = csv.substr(0, csv.find_last_of('\n', csv.size() - 2) + 1);
  EXPECT_THROW((void)exp::score_tournament(small_spec(), truncated),
               std::runtime_error);
  // Not a result CSV at all.
  EXPECT_THROW((void)exp::score_tournament(small_spec(), "hello\n"),
               std::runtime_error);
  // A failed cell: rewrite row 0 as an error row.
  std::istringstream in(csv);
  std::string line, with_error;
  std::getline(in, line);
  with_error = line + "\n";
  std::getline(in, line);
  with_error += "0,none|poisson,none,poisson+poisson,42,6,6,,,,,,,,,,,,,boom\n";
  while (std::getline(in, line)) with_error += line + "\n";
  EXPECT_THROW((void)exp::score_tournament(small_spec(), with_error),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Goldens: scoring output bytes are pinned.
// ---------------------------------------------------------------------------

TEST(TournamentGolden, PayoffCsvBytesArePinned) {
  EXPECT_EQ(exp::payoff_csv(small_matrix()),
            "defense,strategy,fraction_good_served,attacker_bytes,fingerprint\n"
            "none,poisson,0.01694915254237288,119200,919a8d766318156b\n"
            "none,defector,0.01694915254237288,119200,6118f182b44c7cb2\n"
            "none,recon,0.01694915254237288,119200,986ce2f58db6e1cc\n"
            "none,switcher,0.01694915254237288,119200,ae79ef6919cee091\n"
            "retry,poisson,0.9523809523809523,4880500,36f3dd00046e716e\n"
            "retry,defector,0.9523809523809523,4880500,70f07c4dd4ccfbb7\n"
            "retry,recon,0.9523809523809523,4880500,416d93a574995979\n"
            "retry,switcher,0.9523809523809523,4880500,c669db13e31ce90c\n"
            "auction,poisson,1,767980,dc5fac94fb2c8303\n"
            "auction,defector,1,810320,7411b82959109cc2\n"
            "auction,recon,1,759020,6713bd984a7485aa\n"
            "auction,switcher,1,767980,d0bc1392a36e3741\n"
            "elastic,poisson,0.11864406779661017,119200,999bb8ebeb6a97d8\n"
            "elastic,defector,0.11864406779661017,119200,c53e06a9c4197939\n"
            "elastic,recon,0.11864406779661017,119200,80f97e902ca3be03\n"
            "elastic,switcher,0.11864406779661017,119200,9581db7cb712c5b2\n");
}

TEST(TournamentGolden, ParetoReportIsPinned) {
  const std::string report = exp::pareto_report(small_matrix());
  // Structure: header, matrix, best-per-column, dominance, frontier.
  EXPECT_EQ(report.rfind("tournament: 4 defense(s) x 4 attacker strategy(s)\n", 0), 0u)
      << report;
  const std::string tail = report.substr(report.find("\nbest defense"));
  EXPECT_EQ(tail,
            "\nbest defense per attacker strategy:\n"
            "  vs poisson: auction (1)\n"
            "  vs defector: auction (1)\n"
            "  vs recon: auction (1)\n"
            "  vs switcher: auction (1)\n"
            "\ndominance (weak, across every attacker column):\n"
            "  none: dominates [], dominated by [retry, auction, elastic]\n"
            "  retry: dominates [none, elastic], dominated by [auction]\n"
            "  auction: dominates [none, retry, elastic], dominated by []\n"
            "  elastic: dominates [none], dominated by [retry, auction]\n"
            "\npareto frontier: auction\n");
  EXPECT_NE(report.find("  none vs poisson: 0.01694915254237288 / 119200\n"),
            std::string::npos);
  EXPECT_NE(report.find("  auction vs defector: 1 / 810320\n"), std::string::npos);
}

TEST(TournamentGolden, PayoffJsonRoundTripsAndPinsTheFrontier) {
  const std::string text = exp::payoff_json(small_matrix());
  const json::Value doc = json::parse(text);
  ASSERT_TRUE(doc.find("cells") != nullptr);
  ASSERT_EQ(doc.find("cells")->as_array().size(), 16u);
  const json::Value& first = doc.find("cells")->as_array()[0];
  EXPECT_EQ(first.find("defense")->as_string(), "none");
  EXPECT_EQ(first.find("strategy")->as_string(), "poisson");
  EXPECT_EQ(first.find("fingerprint")->as_string(), "919a8d766318156b");
  ASSERT_TRUE(doc.find("pareto_frontier") != nullptr);
  ASSERT_EQ(doc.find("pareto_frontier")->as_array().size(), 1u);
  EXPECT_EQ(doc.find("pareto_frontier")->as_array()[0].as_string(), "auction");
}

// ---------------------------------------------------------------------------
// End to end: the real binary, all three execution paths byte-identical.
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool file_exists(const std::string& path) { return std::ifstream(path).good(); }

struct CmdResult {
  int exit_code = -1;  // -1: killed by a signal / system() failure
  std::string out;
  std::string err;
};

class TournamentE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/speakup_tournament_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  CmdResult cli(const std::string& args, const std::string& env_prefix = "") {
    const std::string out_path = dir_ + "/.cmd_out";
    const std::string err_path = dir_ + "/.cmd_err";
    const std::string cmd = env_prefix + (env_prefix.empty() ? "" : " ") +
                            std::string(SPEAKUP_CLI_BIN) + " " + args + " > '" +
                            out_path + "' 2> '" + err_path + "'";
    const int status = std::system(cmd.c_str());
    CmdResult r;
    if (status != -1 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
    r.out = read_file(out_path);
    r.err = read_file(err_path);
    return r;
  }

  /// The single-process tournament every other path must match.
  std::string baseline_payoff() {
    const CmdResult r =
        cli("tournament " + spec_path() + " --out " + dir_ + "/direct --jobs 2 --quiet");
    EXPECT_EQ(r.exit_code, 0) << r.err;
    return read_file(dir_ + "/direct/payoff.csv");
  }

  std::string dir_;
};

TEST_F(TournamentE2E, WritesAllArtifacts) {
  const CmdResult r =
      cli("tournament " + spec_path() + " --out " + dir_ + "/t --jobs 2");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  for (const char* f :
       {"scenarios.json", "results.csv", "payoff.csv", "payoff.json", "pareto.txt"}) {
    EXPECT_TRUE(file_exists(dir_ + "/t/" + f)) << f;
  }
  EXPECT_NE(r.out.find("pareto frontier: auction"), std::string::npos) << r.out;
  // The generated sweep is a valid ordinary scenario file.
  const CmdResult v = cli("validate " + dir_ + "/t/scenarios.json");
  EXPECT_EQ(v.exit_code, 0) << v.err;
  // And `validate` understands the spec itself (CI validates every file
  // under scenarios/, tournament specs included).
  const CmdResult vs = cli("validate " + spec_path());
  EXPECT_EQ(vs.exit_code, 0) << vs.err;
  EXPECT_NE(vs.out.find("tournament spec"), std::string::npos) << vs.out;
  EXPECT_NE(vs.out.find("4 defense(s) x 4 strategy(s) = 16 cell(s)"),
            std::string::npos)
      << vs.out;
}

TEST_F(TournamentE2E, ShardMergeScorePathIsByteIdentical) {
  const std::string direct = baseline_payoff();
  const CmdResult expand =
      cli("tournament " + spec_path() + " --out " + dir_ + "/sh --expand-only --quiet");
  ASSERT_EQ(expand.exit_code, 0) << expand.err;
  const std::string scen = dir_ + "/sh/scenarios.json";
  for (int i = 0; i < 2; ++i) {
    const CmdResult r = cli("run " + scen + " --shard " + std::to_string(i) +
                            "/2 --out " + dir_ + "/shard" + std::to_string(i) +
                            ".csv --quiet");
    ASSERT_EQ(r.exit_code, 0) << r.err;
  }
  const CmdResult m = cli("merge --out " + dir_ + "/merged.csv " + dir_ +
                          "/shard0.csv " + dir_ + "/shard1.csv");
  ASSERT_EQ(m.exit_code, 0) << m.err;
  const CmdResult score = cli("tournament " + spec_path() + " --out " + dir_ +
                              "/sh --score " + dir_ + "/merged.csv --quiet");
  ASSERT_EQ(score.exit_code, 0) << score.err;
  EXPECT_EQ(read_file(dir_ + "/sh/payoff.csv"), direct);
}

TEST_F(TournamentE2E, DispatchWithInjectedWorkerKillIsByteIdentical) {
  const std::string direct = baseline_payoff();
  const CmdResult expand =
      cli("tournament " + spec_path() + " --out " + dir_ + "/dp --expand-only --quiet");
  ASSERT_EQ(expand.exit_code, 0) << expand.err;
  const CmdResult d = cli(
      "dispatch " + dir_ + "/dp/scenarios.json --workers 4 --out " + dir_ +
          "/dispatched.csv --status json --heartbeat-ms 500",
      "SPEAKUP_WORKER_FAULT='kill:1:" + dir_ + "/kill_token'");
  ASSERT_EQ(d.exit_code, 0) << d.err << d.out;
  // The fault must actually have fired and been survived.
  EXPECT_NE(d.out.find("\"type\":\"worker_dead\""), std::string::npos) << d.out;
  const CmdResult score = cli("tournament " + spec_path() + " --out " + dir_ +
                              "/dp --score " + dir_ + "/dispatched.csv --quiet");
  ASSERT_EQ(score.exit_code, 0) << score.err;
  EXPECT_EQ(read_file(dir_ + "/dp/payoff.csv"), direct);
}

}  // namespace
}  // namespace speakup
