#include "exp/tournament.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "client/strategy.hpp"
#include "core/front_end_factory.hpp"
#include "exp/result_writer.hpp"
#include "exp/scenario_io.hpp"

namespace speakup::exp {

namespace json = util::json;

namespace {

[[noreturn]] void fail(const std::string& ctx, const std::string& msg) {
  throw ScenarioError("tournament " + ctx + ": " + msg);
}

std::vector<std::string> name_list(const json::Value& v, const std::string& ctx) {
  if (!v.is_array()) fail(ctx, "wants an array of names");
  std::vector<std::string> out;
  for (const json::Value& e : v.as_array()) {
    if (!e.is_string()) fail(ctx, "wants an array of strings");
    out.push_back(e.as_string());
  }
  if (out.empty()) fail(ctx, "must list at least one name");
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < out.size(); ++j) {
      if (out[i] == out[j]) fail(ctx, "lists \"" + out[i] + "\" twice");
    }
  }
  return out;
}

/// Splits one ResultWriter CSV row into fields, honoring its RFC-4180
/// quoting (rows never span lines — csv_escape flattens newlines).
std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::size_t column_of(const std::vector<std::string>& header, const char* name) {
  const auto it = std::find(header.begin(), header.end(), name);
  if (it == header.end()) {
    throw std::runtime_error(std::string("tournament score: results CSV has no '") +
                             name + "' column");
  }
  return static_cast<std::size_t>(it - header.begin());
}

double parse_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw std::runtime_error("tournament score: " + what + " is not a number: '" +
                             text + "'");
  }
  return v;
}

std::int64_t parse_int(const std::string& text, const std::string& what) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(text, &pos);
    if (pos == text.size() && !text.empty()) return v;
  } catch (const std::exception&) {
  }
  throw std::runtime_error("tournament score: " + what + " is not an integer: '" +
                           text + "'");
}

std::string join(const std::vector<std::string>& names, const char* sep) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += sep;
    out += n;
  }
  return out;
}

}  // namespace

bool PayoffMatrix::dominates(std::size_t a, std::size_t b) const {
  bool strict = false;
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const double pa = cell(a, s).good_fraction;
    const double pb = cell(b, s).good_fraction;
    if (pa < pb) return false;
    if (pa > pb) strict = true;
  }
  return strict;
}

std::vector<std::size_t> PayoffMatrix::pareto_rows() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < defenses.size(); ++d) {
    bool beaten = false;
    for (std::size_t o = 0; o < defenses.size() && !beaten; ++o) {
      beaten = o != d && dominates(o, d);
    }
    if (!beaten) out.push_back(d);
  }
  return out;
}

TournamentSpec parse_tournament_spec(std::string_view json_text) {
  json::Value doc;
  try {
    doc = json::parse(json_text);
  } catch (const json::Error& e) {
    throw ScenarioError(e.what());
  }
  if (!doc.is_object()) fail("top level", "wants an object");

  TournamentSpec spec;
  spec.base = json::Value{json::Value::Object{}};
  bool have_base = false;
  for (const auto& [key, val] : doc.as_object()) {
    if (key == "description") {
      if (!val.is_string()) fail("description", "wants a string");
      spec.description = val.as_string();
    } else if (key == "defenses") {
      spec.defenses = name_list(val, "defenses");
    } else if (key == "strategies") {
      spec.strategies = name_list(val, "strategies");
    } else if (key == "attacker_group") {
      std::int64_t idx = -1;
      try {
        idx = val.as_int();
      } catch (const json::Error&) {
        idx = -1;
      }
      if (idx < 0) fail("attacker_group", "wants a non-negative integer");
      spec.attacker_group = static_cast<std::size_t>(idx);
    } else if (key == "base") {
      if (!val.is_object()) fail("base", "wants an object (scenario defaults)");
      spec.base = val;
      have_base = true;
    } else {
      fail("top level", "unknown key \"" + key + "\"");
    }
  }
  if (!have_base) fail("top level", "missing \"base\" (the shared scenario defaults)");

  // Registry defaults: an omitted axis means "every registered name".
  if (spec.defenses.empty()) {
    spec.defenses = core::FrontEndFactory::instance().names();
  }
  if (spec.strategies.empty()) {
    spec.strategies = client::StrategyFactory::instance().names();
  }
  for (const std::string& d : spec.defenses) {
    try {
      (void)resolve_defense_name(d);
    } catch (const std::invalid_argument& e) {
      fail("defenses", e.what());
    }
  }
  for (const std::string& s : spec.strategies) {
    try {
      (void)resolve_strategy_name(s);
    } catch (const std::invalid_argument& e) {
      fail("strategies", e.what());
    }
  }

  // The attacker group must exist in base.groups, with a workload object the
  // strategy axis can write into.
  const json::Value* groups = spec.base.find("groups");
  if (groups == nullptr || !groups->is_array()) {
    fail("base", "needs a \"groups\" array (tournaments use explicit groups, "
                 "not the \"lan\" shorthand)");
  }
  if (spec.attacker_group >= groups->as_array().size()) {
    fail("attacker_group",
         "index " + std::to_string(spec.attacker_group) + " is out of range: base "
             "lists " + std::to_string(groups->as_array().size()) + " group(s)");
  }
  const json::Value& attacker = groups->as_array()[spec.attacker_group];
  if (!attacker.is_object() || attacker.find("workload") == nullptr ||
      !attacker.find("workload")->is_object()) {
    fail("attacker_group", "base.groups[" + std::to_string(spec.attacker_group) +
                               "] needs a \"workload\" object");
  }
  // "label"/"grid"/"seeds" are per-scenario directives; base becomes the
  // file's defaults where they are rejected — fail here with a better message.
  for (const char* k : {"label", "grid", "seeds"}) {
    if (spec.base.find(k) != nullptr) {
      fail("base", std::string("\"") + k + "\" is not allowed (the tournament "
                       "builds its own grid and labels)");
    }
  }
  return spec;
}

TournamentSpec load_tournament_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_tournament_spec(buf.str());
  } catch (const ScenarioError& e) {
    throw ScenarioError(path + ": " + e.what());
  }
}

std::string tournament_scenarios_json(const TournamentSpec& spec) {
  const std::string strategy_path =
      "groups." + std::to_string(spec.attacker_group) + ".workload.strategy";

  json::Value defense_axis{json::Value::Array{}};
  for (const std::string& d : spec.defenses) defense_axis.push_back(d);
  json::Value strategy_axis{json::Value::Array{}};
  for (const std::string& s : spec.strategies) strategy_axis.push_back(s);

  // Defense is the first grid axis, so it is outermost in the expansion:
  // cell (d, s) lands at scenario index d * |strategies| + s.
  json::Value grid{json::Value::Object{}};
  grid.set("defense", std::move(defense_axis));
  grid.set(strategy_path, std::move(strategy_axis));

  json::Value entry{json::Value::Object{}};
  entry.set("label", "{defense}|{" + strategy_path + "}");
  entry.set("grid", std::move(grid));
  json::Value scenarios{json::Value::Array{}};
  scenarios.push_back(std::move(entry));

  json::Value doc{json::Value::Object{}};
  doc.set("description", spec.description.empty()
                             ? std::string("tournament: ") +
                                   std::to_string(spec.defenses.size()) +
                                   " defense(s) x " +
                                   std::to_string(spec.strategies.size()) +
                                   " strategy(s)"
                             : spec.description);
  doc.set("defaults", spec.base);
  doc.set("scenarios", std::move(scenarios));
  const std::string text = doc.dump(2) + "\n";

  // Validate now: every cell must parse and construct (defense registered,
  // strategy knobs accepted) before any sweep is launched on this file.
  const ScenarioFile file = parse_scenario_file(text);
  if (file.scenarios.size() != spec.defenses.size() * spec.strategies.size()) {
    fail("expansion", "expected " +
                          std::to_string(spec.defenses.size() * spec.strategies.size()) +
                          " scenarios, got " + std::to_string(file.scenarios.size()));
  }
  return text;
}

PayoffMatrix score_tournament(const TournamentSpec& spec,
                              const std::string& results_csv) {
  PayoffMatrix m;
  m.description = spec.description;
  m.defenses = spec.defenses;
  m.strategies = spec.strategies;
  const std::size_t n_cells = spec.defenses.size() * spec.strategies.size();

  std::istringstream in(results_csv);
  std::string line;
  if (!std::getline(in, line) || line != ResultWriter::csv_header()) {
    throw std::runtime_error(
        "tournament score: results do not start with the speakup CSV header");
  }
  const std::vector<std::string> header = split_csv_row(line);
  const std::size_t c_label = column_of(header, "label");
  const std::size_t c_defense = column_of(header, "defense");
  const std::size_t c_good = column_of(header, "fraction_good_served");
  const std::size_t c_bytes = column_of(header, "attacker_bytes");
  const std::size_t c_fp = column_of(header, "fingerprint");
  const std::size_t c_error = column_of(header, "error");
  const std::size_t c_served = column_of(header, "served_total");
  const std::size_t c_events = column_of(header, "events_executed");
  const std::size_t c_busy = column_of(header, "server_busy_fraction");

  std::vector<PayoffCell> cells(n_cells);
  std::vector<bool> seen(n_cells, false);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_row(line);
    if (fields.size() != header.size()) {
      throw std::runtime_error("tournament score: malformed row: " + line);
    }
    const std::size_t index =
        static_cast<std::size_t>(parse_int(fields[0], "row index"));
    if (index >= n_cells) {
      throw std::runtime_error("tournament score: row index " +
                               std::to_string(index) + " is outside the " +
                               std::to_string(n_cells) + "-cell matrix");
    }
    if (seen[index]) {
      throw std::runtime_error("tournament score: cell index " +
                               std::to_string(index) + " appears twice");
    }
    seen[index] = true;
    const std::size_t d = index / spec.strategies.size();
    const std::size_t s = index % spec.strategies.size();
    const std::string want_label = spec.defenses[d] + "|" + spec.strategies[s];
    if (fields[c_label] != want_label || fields[c_defense] != spec.defenses[d]) {
      throw std::runtime_error("tournament score: row " + std::to_string(index) +
                               " is labeled '" + fields[c_label] +
                               "', expected '" + want_label +
                               "' — the CSV was not produced from this spec");
    }
    if (!fields[c_error].empty()) {
      throw std::runtime_error("tournament score: cell '" + want_label +
                               "' failed: " + fields[c_error]);
    }
    PayoffCell& cell = cells[index];
    cell.index = index;
    cell.defense = spec.defenses[d];
    cell.strategy = spec.strategies[s];
    cell.good_fraction = parse_double(fields[c_good], "fraction_good_served");
    cell.attacker_bytes = parse_int(fields[c_bytes], "attacker_bytes");
    cell.fingerprint = fields[c_fp];
    cell.served_total = parse_int(fields[c_served], "served_total");
    cell.events_executed = parse_int(fields[c_events], "events_executed");
    cell.server_busy_fraction =
        parse_double(fields[c_busy], "server_busy_fraction");
  }
  for (std::size_t i = 0; i < n_cells; ++i) {
    if (!seen[i]) {
      throw std::runtime_error(
          "tournament score: cell index " + std::to_string(i) + " ('" +
          spec.defenses[i / spec.strategies.size()] + "|" +
          spec.strategies[i % spec.strategies.size()] +
          "') is missing from the results");
    }
  }
  m.cells = std::move(cells);
  return m;
}

std::string payoff_csv(const PayoffMatrix& m) {
  std::string out = "defense,strategy,fraction_good_served,attacker_bytes,fingerprint\n";
  for (const PayoffCell& c : m.cells) {
    out += c.defense + ',' + c.strategy + ',' +
           json::number_to_string(c.good_fraction) + ',' +
           std::to_string(c.attacker_bytes) + ',' + c.fingerprint + '\n';
  }
  return out;
}

std::string payoff_json(const PayoffMatrix& m) {
  json::Value doc{json::Value::Object{}};
  if (!m.description.empty()) doc.set("description", m.description);
  json::Value defenses{json::Value::Array{}};
  for (const std::string& d : m.defenses) defenses.push_back(d);
  doc.set("defenses", std::move(defenses));
  json::Value strategies{json::Value::Array{}};
  for (const std::string& s : m.strategies) strategies.push_back(s);
  doc.set("strategies", std::move(strategies));
  json::Value cells{json::Value::Array{}};
  for (const PayoffCell& c : m.cells) {
    json::Value cv{json::Value::Object{}};
    cv.set("index", static_cast<double>(c.index));
    cv.set("defense", c.defense);
    cv.set("strategy", c.strategy);
    cv.set("fraction_good_served", c.good_fraction);
    cv.set("attacker_bytes", static_cast<double>(c.attacker_bytes));
    cv.set("fingerprint", c.fingerprint);
    json::Value metrics{json::Value::Object{}};
    metrics.set("served_total", static_cast<double>(c.served_total));
    metrics.set("events_executed", static_cast<double>(c.events_executed));
    metrics.set("server_busy_fraction", c.server_busy_fraction);
    cv.set("metrics", std::move(metrics));
    cells.push_back(std::move(cv));
  }
  doc.set("cells", std::move(cells));
  json::Value pareto{json::Value::Array{}};
  for (const std::size_t d : m.pareto_rows()) pareto.push_back(m.defenses[d]);
  doc.set("pareto_frontier", std::move(pareto));
  return doc.dump(2) + "\n";
}

std::string pareto_report(const PayoffMatrix& m) {
  std::ostringstream os;
  os << "tournament: " << m.defenses.size() << " defense(s) x "
     << m.strategies.size() << " attacker strategy(s)\n";
  if (!m.description.empty()) os << m.description << "\n";
  os << "\npayoff (fraction of good requests served / attacker bytes):\n";
  for (std::size_t d = 0; d < m.defenses.size(); ++d) {
    for (std::size_t s = 0; s < m.strategies.size(); ++s) {
      const PayoffCell& c = m.cell(d, s);
      os << "  " << c.defense << " vs " << c.strategy << ": "
         << json::number_to_string(c.good_fraction) << " / " << c.attacker_bytes
         << "\n";
    }
  }
  os << "\nbest defense per attacker strategy:\n";
  for (std::size_t s = 0; s < m.strategies.size(); ++s) {
    double best = m.cell(0, s).good_fraction;
    for (std::size_t d = 1; d < m.defenses.size(); ++d) {
      best = std::max(best, m.cell(d, s).good_fraction);
    }
    std::vector<std::string> winners;
    for (std::size_t d = 0; d < m.defenses.size(); ++d) {
      if (m.cell(d, s).good_fraction == best) winners.push_back(m.defenses[d]);
    }
    os << "  vs " << m.strategies[s] << ": " << join(winners, ", ") << " ("
       << json::number_to_string(best) << ")\n";
  }
  os << "\ndominance (weak, across every attacker column):\n";
  for (std::size_t d = 0; d < m.defenses.size(); ++d) {
    std::vector<std::string> dominates, dominated_by;
    for (std::size_t o = 0; o < m.defenses.size(); ++o) {
      if (o == d) continue;
      if (m.dominates(d, o)) dominates.push_back(m.defenses[o]);
      if (m.dominates(o, d)) dominated_by.push_back(m.defenses[o]);
    }
    os << "  " << m.defenses[d] << ": dominates ["
       << join(dominates, ", ") << "], dominated by ["
       << join(dominated_by, ", ") << "]\n";
  }
  std::vector<std::string> frontier;
  for (const std::size_t d : m.pareto_rows()) frontier.push_back(m.defenses[d]);
  os << "\npareto frontier: " << join(frontier, ", ") << "\n";
  return os.str();
}

}  // namespace speakup::exp
