// End-to-end reproductions of the paper's headline behaviours at reduced
// scale (fewer clients, shorter runs than the benches). Each test pins the
// *shape* of one evaluation result from §7.
#include <gtest/gtest.h>

#include "core/theory.hpp"
#include "exp/experiment.hpp"

namespace speakup::exp {
namespace {

// 25 good + 25 bad clients, 2 Mbit/s each, as §7.1. 30-second runs.
ScenarioConfig paper_lan(DefenseMode mode, double capacity, std::uint64_t seed = 7) {
  ScenarioConfig cfg = lan_scenario(25, 25, capacity, mode, seed);
  cfg.duration = Duration::seconds(30.0);
  return cfg;
}

TEST(PaperResults, Fig2_SpeakUpRestoresProportionalAllocation) {
  // f = 0.5 point of Figure 2: G = B, c = 100. Without speak-up the good
  // clients get the request-rate share (~5%); with it, roughly the
  // bandwidth share (~0.4-0.5 measured; ideal 0.5).
  const ExperimentResult off = run_scenario(paper_lan(DefenseMode::kNone, 100.0));
  const ExperimentResult on = run_scenario(paper_lan(DefenseMode::kAuction, 100.0));
  EXPECT_LT(off.allocation_good, 0.10);
  EXPECT_GT(on.allocation_good, 0.33);
  EXPECT_LT(on.allocation_good, 0.60);
  // Sanity against theory: ideal no-defense share is g/(g+B).
  EXPECT_NEAR(off.allocation_good,
              core::theory::no_defense_good_allocation(50.0, 1000.0), 0.05);
}

TEST(PaperResults, Fig3_OverprovisionedCapacityServesAllGoodRequests) {
  // c = 200 = 2x c_id: all good requests served (right bars of Figure 3).
  const ExperimentResult r = run_scenario(paper_lan(DefenseMode::kAuction, 200.0));
  EXPECT_GT(r.fraction_good_served, 0.95);
}

TEST(PaperResults, Fig3_UnderprovisionedCapacityStaysProportional) {
  // c = 50 = c_id/2: allocation is roughly bandwidth-proportional and the
  // good demand cannot be fully satisfied.
  const ExperimentResult r = run_scenario(paper_lan(DefenseMode::kAuction, 50.0));
  EXPECT_GT(r.allocation_good, 0.30);
  EXPECT_LT(r.allocation_good, 0.60);
}

TEST(PaperResults, Fig4_PaymentTimeFallsWithCapacity) {
  // Figure 4 shape: uploading dummy bytes takes ~1/c-ish; with a lightly
  // loaded server the latency cost of speak-up nearly vanishes.
  const ExperimentResult c50 = run_scenario(paper_lan(DefenseMode::kAuction, 50.0));
  const ExperimentResult c200 = run_scenario(paper_lan(DefenseMode::kAuction, 200.0));
  EXPECT_GT(c50.thinner.payment_time_good.mean(),
            3 * c200.thinner.payment_time_good.mean());
  EXPECT_LT(c200.thinner.payment_time_good.mean(), 0.2);
}

TEST(PaperResults, Fig5_PriceIsBoundedByTheAverage) {
  // Figure 5: the average price stays below (G+B)/c (clients cannot spend
  // more bandwidth than they have; quiescence keeps them under the bound).
  const ExperimentResult r = run_scenario(paper_lan(DefenseMode::kAuction, 50.0));
  const double upper = core::theory::average_price_bytes(
      25 * 250'000.0, 25 * 250'000.0, 50.0);  // (G+B)/c in bytes
  EXPECT_GT(r.thinner.price_good.count(), 50u);
  EXPECT_LT(r.thinner.price_good.mean(), upper * 1.05);
  EXPECT_GT(r.thinner.price_good.mean(), upper * 0.2);  // real contention
}

TEST(PaperResults, Fig6_AllocationTracksClientBandwidth) {
  // Two all-good bandwidth categories, 10 clients each: 0.5 vs 2.5 Mbit/s.
  // Server allocation should track the 1:5 bandwidth ratio (Figure 6).
  ScenarioConfig cfg;
  cfg.mode = DefenseMode::kAuction;
  cfg.capacity_rps = 10.0;
  cfg.seed = 7;
  cfg.duration = Duration::seconds(40.0);
  for (const double mbit : {0.5, 2.5}) {
    ClientGroupSpec g;
    g.label = "bw" + std::to_string(mbit);
    g.count = 10;
    g.workload = client::good_client_params();
    g.access_bw = Bandwidth::mbps(mbit);
    cfg.groups.push_back(g);
  }
  const ExperimentResult r = run_scenario(cfg);
  ASSERT_EQ(r.groups.size(), 2u);
  const double slow = r.groups[0].allocation;
  const double fast = r.groups[1].allocation;
  ASSERT_GT(slow, 0.0);
  const double ratio = fast / slow;
  EXPECT_GT(ratio, 2.5);  // ideal 5.0; allow quiescence effects
  EXPECT_LT(ratio, 10.0);
}

TEST(PaperResults, Fig7_LongRttGoodClientsGetLess) {
  // Two all-good RTT categories (Figure 7): ~1 ms vs ~400 ms. Long-RTT
  // clients pay slower (slow start + 2-RTT quiescence) and get less.
  ScenarioConfig cfg;
  cfg.mode = DefenseMode::kAuction;
  cfg.capacity_rps = 10.0;
  cfg.seed = 7;
  cfg.duration = Duration::seconds(40.0);
  for (const int delay_ms : {1, 200}) {
    ClientGroupSpec g;
    g.label = "rtt" + std::to_string(delay_ms);
    g.count = 10;
    g.workload = client::good_client_params();
    g.access_delay = Duration::millis(delay_ms);
    cfg.groups.push_back(g);
  }
  const ExperimentResult r = run_scenario(cfg);
  EXPECT_GT(r.groups[0].allocation, r.groups[1].allocation * 1.2);
}

TEST(PaperResults, Sec32_RetryVariantAlsoRestoresAllocation) {
  // The §3.2 mechanism meets the same design goal with in-band retries.
  const ExperimentResult off = run_scenario(paper_lan(DefenseMode::kNone, 100.0));
  const ExperimentResult on = run_scenario(paper_lan(DefenseMode::kRetry, 100.0));
  EXPECT_GT(on.allocation_good, 0.30);
  EXPECT_GT(on.allocation_good, off.allocation_good * 4);
  // The price in retries emerged and was recorded.
  EXPECT_GT(on.thinner.retries_good.mean(), 1.0);
}

TEST(PaperResults, Sec5_QuantumAuctionResistsHardRequestAttack) {
  // Attackers send only hard requests (difficulty 10) and concentrate
  // their bandwidth on one payment at a time (window 1 — splitting across
  // 20 channels would cripple their ability to pay the inflated prices).
  // Under the flat auction they pay the same price as everyone for 10x the
  // work, capturing most of the server's *time*; under the §5 quantum
  // auction every quantum is auctioned, so time reverts to proportional.
  auto build = [](DefenseMode mode) {
    ScenarioConfig cfg = lan_scenario(10, 10, 20.0, mode, 7);
    cfg.duration = Duration::seconds(40.0);
    cfg.groups[1].workload.difficulty = 10;
    cfg.groups[1].workload.window = 1;
    cfg.groups[1].workload.lambda = 10.0;
    return cfg;
  };
  const ExperimentResult flat = run_scenario(build(DefenseMode::kAuction));
  const ExperimentResult quantum = run_scenario(build(DefenseMode::kQuantumAuction));
  EXPECT_GT(quantum.server_time_good, flat.server_time_good * 1.5);
  EXPECT_LT(flat.server_time_good, 0.30);   // hard requests crowd good out
  EXPECT_GT(quantum.server_time_good, 0.30);  // quantum auction restores time share
}

TEST(PaperResults, Sec74_BadClientAdvantageIsBounded) {
  // §7.4: bad clients can cheat the proportional allocation, but only to a
  // limited extent: at c = c_id they keep the good fraction-served high,
  // and at modest overprovisioning everything is served.
  const ExperimentResult at_cid = run_scenario(paper_lan(DefenseMode::kAuction, 100.0));
  // Good clients are *not* fully served at c_id...
  EXPECT_GT(at_cid.fraction_good_served, 0.6);
  // ...but the adversarial advantage is bounded: 50% overprovisioning
  // definitely suffices in this configuration (the paper measured +15%).
  const ExperimentResult extra = run_scenario(paper_lan(DefenseMode::kAuction, 150.0));
  EXPECT_GT(extra.fraction_good_served, 0.93);
}

}  // namespace
}  // namespace speakup::exp
