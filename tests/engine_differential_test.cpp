// The pooled-engine equivalence contract: for every checked-in scenario,
// running every client group on client::ClientPool produces an
// ExperimentResult fingerprint IDENTICAL to the per-object WorkloadClient
// engine — same counters, same sample moments, same events_executed. The
// pool is not "statistically equivalent", it replays the exact event
// sequence (see client_pool.hpp for the reserve_seq/schedule_keyed
// argument); any divergence, even a reordered event, trips this test.
//
// Skipped files: tournament_small.json (a tournament spec, not a scenario
// file), abl5.json / tab1_capacity.json (bench grids, not scenarios), and
// million_clients.json (the pooled-engine showcase — too big to run twice
// here; CI runs it pooled-only).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "exp/experiment.hpp"
#include "exp/scenario_io.hpp"

namespace speakup::exp {
namespace {

std::string hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

ScenarioConfig pooled(ScenarioConfig cfg) {
  for (ClientGroupSpec& g : cfg.groups) g.engine = "pooled";
  return cfg;
}

void expect_engines_identical(const std::string& file_name) {
  const ScenarioFile file =
      load_scenario_file(std::string(SPEAKUP_SCENARIO_DIR) + "/" + file_name);
  ASSERT_FALSE(file.scenarios.empty()) << file_name;
  for (const LabeledScenario& s : file.scenarios) {
    const ExperimentResult object_r = run_scenario(s.config);
    const ExperimentResult pooled_r = run_scenario(pooled(s.config));
    EXPECT_EQ(hex(object_r.fingerprint()), hex(pooled_r.fingerprint()))
        << file_name << " '" << s.label << "': pooled engine diverged (object events="
        << object_r.events_executed << ", pooled events=" << pooled_r.events_executed << ")";
  }
}

TEST(EngineDifferential, Smoke) { expect_engines_identical("smoke.json"); }
TEST(EngineDifferential, Fig2) { expect_engines_identical("fig2.json"); }
TEST(EngineDifferential, Fig3) { expect_engines_identical("fig3.json"); }
TEST(EngineDifferential, Fig4) { expect_engines_identical("fig4.json"); }
TEST(EngineDifferential, Fig5) { expect_engines_identical("fig5.json"); }
TEST(EngineDifferential, Fig6) { expect_engines_identical("fig6.json"); }
TEST(EngineDifferential, Fig7) { expect_engines_identical("fig7.json"); }
TEST(EngineDifferential, Tab1) { expect_engines_identical("tab1.json"); }
TEST(EngineDifferential, Abl1) { expect_engines_identical("abl1.json"); }
TEST(EngineDifferential, Abl3) { expect_engines_identical("abl3.json"); }
TEST(EngineDifferential, Abl4) { expect_engines_identical("abl4.json"); }
TEST(EngineDifferential, Sec74) { expect_engines_identical("sec7_4.json"); }
TEST(EngineDifferential, Lossy) { expect_engines_identical("lossy.json"); }
TEST(EngineDifferential, SharedBottleneck) {
  expect_engines_identical("shared_bottleneck.json");
}
TEST(EngineDifferential, AdversaryOnOff) {
  expect_engines_identical("adversary_onoff.json");
}
TEST(EngineDifferential, AdversaryDefector) {
  expect_engines_identical("adversary_defector.json");
}
TEST(EngineDifferential, AdversaryAdaptive) {
  expect_engines_identical("adversary_adaptive.json");
}
TEST(EngineDifferential, AdversaryFlashCrowd) {
  expect_engines_identical("adversary_flashcrowd.json");
}

}  // namespace
}  // namespace speakup::exp
