// The observability hub: one Observer per run owns a MetricsRegistry and a
// Tracer and exposes the typed probe catalog the instrumented layers call.
//
// Wiring: components do not hold observer pointers. Every component already
// reaches its sim::EventLoop, and the loop stores an untyped
// `obs::Observer*` (set by Observer's constructor, cleared by its
// destructor). A probe site is therefore one line:
//
//     if (auto* o = loop().observer()) o->on_link_drop(bytes);
//
// With no observer attached the cost is a pointer load and a
// never-taken branch — no allocation, no event-count change, no
// fingerprint drift (tests/obs_invariance_test.cpp pins this).
//
// Sampling rides the event loop's sample hook (a deadline compare inside
// step(); see sim/event_loop.hpp), NOT a scheduled event, so enabling
// metrics does not change `events_executed` — scenario fingerprints are
// byte-identical with observability on or off.
//
// The probe catalog (names as they appear in metrics.json / traces) is
// documented in docs/observability.md; keep the two in sync.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/event_loop.hpp"
#include "util/units.hpp"

namespace speakup::obs {

/// Client class as the probes see it. Mirrors http::ClientClass value for
/// value (kGood=0, kBad=1, kOther=2) so call sites can static_cast.
enum class Cls : std::uint8_t { kGood = 0, kBad = 1, kOther = 2 };

class Observer {
 public:
  struct Options {
    bool metrics = false;  // maintain the registry + interval sampling
    bool trace = false;    // record flight-recorder events
    Duration sample_interval = Duration::seconds(1.0);
    std::size_t trace_capacity = Tracer::kDefaultCapacity;
  };

  /// Attaches to `loop` (observer pointer + sample hook) for its lifetime.
  /// Construct after the experiment is built and destroy (or detach) after
  /// the run; the loop must outlive the Observer.
  Observer(sim::EventLoop& loop, const Options& opts);
  ~Observer();

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }
  [[nodiscard]] bool metrics_enabled() const { return opts_.metrics; }
  [[nodiscard]] bool trace_enabled() const { return opts_.trace; }
  [[nodiscard]] Duration sample_interval() const { return opts_.sample_interval; }

  /// Takes the final (end-of-run) sample and stops sampling. Idempotent.
  void finish();

  // --- probe catalog ---------------------------------------------------------
  // All probes are safe to call with either half disabled; each guards on
  // its own flag. Names passed to the tracer must be string literals.

  // net::Link
  void on_link_enqueue(Bytes wire) {
    if (opts_.metrics) {
      link_queue_bytes_ += wire;
      metrics_.inc(c_link_enqueued_);
    }
  }
  void on_link_dequeue(Bytes wire) {
    if (opts_.metrics) link_queue_bytes_ -= wire;
  }
  void on_link_drop(Bytes wire) {
    if (opts_.metrics) metrics_.inc(c_link_drops_);
    if (opts_.trace) {
      tracer_.instant("link_drop", "net", loop_->now(), 0, "bytes",
                      static_cast<double>(wire));
    }
  }

  // transport::TcpConnection
  void on_tcp_retransmit(double cwnd_bytes) {
    if (opts_.metrics) {
      metrics_.inc(c_tcp_retransmits_);
      metrics_.observe(h_tcp_cwnd_, cwnd_bytes);
    }
  }
  void on_tcp_rto_backoff(Duration new_rto) {
    if (opts_.metrics) metrics_.inc(c_tcp_rto_backoffs_);
    if (opts_.trace) {
      tracer_.instant("rto_backoff", "transport", loop_->now(), 0, "rto_ms",
                      new_rto.sec() * 1000.0);
    }
  }

  // core::FrontEnd (all defenses)
  void on_admission(Cls cls, double price, bool direct) {
    if (opts_.metrics) {
      metrics_.inc(cls == Cls::kGood   ? c_admitted_good_
                   : cls == Cls::kBad  ? c_admitted_bad_
                                       : c_admitted_other_);
      if (direct) metrics_.inc(c_admitted_direct_);
      metrics_.observe(h_admission_price_, price);
    }
    if (opts_.trace) {
      tracer_.instant("admission", "core", loop_->now(), 0, "price", price);
    }
  }
  void on_rejection() {
    if (opts_.metrics) metrics_.inc(c_rejections_);
  }
  void on_auction_clear(double price) {
    if (opts_.metrics) {
      metrics_.inc(c_auctions_);
      metrics_.observe(h_clearing_price_, price);
    }
    if (opts_.trace) {
      tracer_.instant("auction_clear", "core", loop_->now(), 0, "price", price);
    }
  }
  void on_channel_expired(double wasted_bytes) {
    if (opts_.metrics) {
      metrics_.inc(c_expirations_);
      metrics_.observe(h_wasted_payment_, wasted_bytes);
    }
  }
  void on_quantum_suspension() {
    if (opts_.metrics) metrics_.inc(c_suspensions_);
    if (opts_.trace) tracer_.instant("suspension", "core", loop_->now(), 0);
  }
  void on_abort() {
    if (opts_.metrics) metrics_.inc(c_aborts_);
  }
  void on_elastic_scale(double scale) {
    if (opts_.metrics) {
      metrics_.inc(c_elastic_scale_ups_);
      elastic_scale_ = scale;
    }
    if (opts_.trace) {
      tracer_.instant("elastic_scale_up", "core", loop_->now(), 0, "scale", scale);
    }
  }
  void on_puzzle_admitted(double waited_seconds) {
    if (opts_.metrics) {
      metrics_.inc(c_puzzles_admitted_);
      metrics_.observe(h_puzzle_wait_, waited_seconds);
    }
  }
  void on_puzzle_solved() {
    if (opts_.metrics) metrics_.inc(c_puzzles_solved_);
  }

  // client::WorkloadClient / client::Strategy
  void on_payment_started(std::uint32_t client) {
    if (opts_.metrics) metrics_.inc(c_payments_started_);
    if (opts_.trace) {
      tracer_.instant("payment_start", "client", loop_->now(), client + 1);
    }
  }
  void on_payment_declined(std::uint32_t client) {
    if (opts_.metrics) metrics_.inc(c_payments_declined_);
    if (opts_.trace) {
      tracer_.instant("payment_declined", "client", loop_->now(), client + 1);
    }
  }
  void on_payment_abandoned(std::uint32_t client) {
    if (opts_.metrics) metrics_.inc(c_defections_);
    if (opts_.trace) {
      tracer_.instant("defection", "client", loop_->now(), client + 1);
    }
  }
  /// Full request lifecycle span on the client's own track; `disposition`
  /// is 0 = served, 1 = denied, 2 = busy-rejected. A request that paid also
  /// gets a nested payment span [pay_started, now].
  void on_request_finish(std::uint32_t client, SimTime started, int disposition,
                         bool paid, SimTime pay_started) {
    if (opts_.metrics) {
      metrics_.inc(disposition == 0   ? c_requests_served_
                   : disposition == 1 ? c_requests_denied_
                                      : c_requests_busy_);
    }
    if (opts_.trace) {
      const SimTime now = loop_->now();
      tracer_.span("request", "client", started, now - started, client + 1,
                   "disposition", static_cast<double>(disposition));
      if (paid) {
        tracer_.span("payment", "client", pay_started, now - pay_started, client + 1);
      }
    }
  }

 private:
  /// EventLoop sample-hook trampoline: samples at each elapsed interval
  /// boundary and returns the next deadline.
  static std::int64_t sample_hook(void* ctx, std::int64_t now_ns);

  void register_catalog();

  sim::EventLoop* loop_;
  Options opts_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::int64_t next_sample_ns_ = 0;
  bool finished_ = false;

  // Incrementally-maintained aggregates polled by gauges.
  std::int64_t link_queue_bytes_ = 0;
  double elastic_scale_ = 1.0;

  // Dense metric ids (registered once in register_catalog()).
  MetricId c_link_enqueued_ = 0;
  MetricId c_link_drops_ = 0;
  MetricId c_tcp_retransmits_ = 0;
  MetricId c_tcp_rto_backoffs_ = 0;
  MetricId c_admitted_good_ = 0;
  MetricId c_admitted_bad_ = 0;
  MetricId c_admitted_other_ = 0;
  MetricId c_admitted_direct_ = 0;
  MetricId c_rejections_ = 0;
  MetricId c_auctions_ = 0;
  MetricId c_expirations_ = 0;
  MetricId c_suspensions_ = 0;
  MetricId c_aborts_ = 0;
  MetricId c_elastic_scale_ups_ = 0;
  MetricId c_puzzles_admitted_ = 0;
  MetricId c_puzzles_solved_ = 0;
  MetricId c_payments_started_ = 0;
  MetricId c_payments_declined_ = 0;
  MetricId c_defections_ = 0;
  MetricId c_requests_served_ = 0;
  MetricId c_requests_denied_ = 0;
  MetricId c_requests_busy_ = 0;
  MetricId h_tcp_cwnd_ = 0;
  MetricId h_admission_price_ = 0;
  MetricId h_clearing_price_ = 0;
  MetricId h_wasted_payment_ = 0;
  MetricId h_puzzle_wait_ = 0;
};

}  // namespace speakup::obs
