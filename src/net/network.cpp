#include "net/network.hpp"

#include <deque>

namespace speakup::net {

Switch& Network::add_switch(std::string name) { return add_node<Switch>(std::move(name)); }

Link& Network::connect(const Node& a, const Node& b, const LinkSpec& ab, const LinkSpec& ba) {
  SPEAKUP_ASSERT(a.id() != b.id());
  SPEAKUP_ASSERT(link_between(a.id(), b.id()) == nullptr);  // single link per pair
  auto link = std::make_unique<Link>(*this, a.id(), b.id(), ab, ba);
  Link& ref = *link;
  const std::size_t idx = links_.size();
  links_.push_back(std::move(link));
  if (adjacency_.size() < nodes_.size()) adjacency_.resize(nodes_.size());
  adjacency_[static_cast<std::size_t>(a.id())].emplace_back(b.id(), idx);
  adjacency_[static_cast<std::size_t>(b.id())].emplace_back(a.id(), idx);
  routes_valid_ = false;
  return ref;
}

void Network::build_routes() {
  const std::size_t n = nodes_.size();
  adjacency_.resize(n);
  next_hop_.assign(n, std::vector<NodeId>(n, kInvalidNode));
  // BFS from every destination: next_hop_[v][dst] = parent-of-v on path to dst.
  for (std::size_t dst = 0; dst < n; ++dst) {
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier;
    seen[dst] = true;
    frontier.push_back(static_cast<NodeId>(dst));
    next_hop_[dst][dst] = static_cast<NodeId>(dst);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, link_idx] : adjacency_[static_cast<std::size_t>(u)]) {
        (void)link_idx;
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = true;
          next_hop_[static_cast<std::size_t>(v)][dst] = u;
          frontier.push_back(v);
        }
      }
    }
  }
  routes_valid_ = true;
}

void Network::forward(NodeId from, Packet p) {
  if (!routes_valid_) build_routes();
  SPEAKUP_ASSERT(p.dst != kInvalidNode);
  const NodeId next = next_hop_[static_cast<std::size_t>(from)][static_cast<std::size_t>(p.dst)];
  if (next == kInvalidNode || next == from) {
    ++unroutable_drops_;
    return;
  }
  Link* link = link_between(from, next);
  SPEAKUP_ASSERT(link != nullptr);
  link->send(from, std::move(p));
}

void Network::deliver(NodeId to, Packet p) { node(to).on_packet(std::move(p)); }

Link* Network::link_between(NodeId a, NodeId b) const {
  if (static_cast<std::size_t>(a) >= adjacency_.size()) return nullptr;
  for (const auto& [nbr, idx] : adjacency_[static_cast<std::size_t>(a)]) {
    if (nbr == b) return links_[idx].get();
  }
  return nullptr;
}

}  // namespace speakup::net
