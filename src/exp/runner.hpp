// Batch experiment runner: the one sweep loop everything shares.
//
// Every figure and table in the paper is a sweep — over the good-bandwidth
// fraction, the capacity, the POST size, the defense mode. Runner collects
// labeled ScenarioConfigs, executes them on a thread pool (scenarios are
// fully independent: each Experiment owns its event loop and every RNG
// stream derives from the scenario seed), and returns results in insertion
// order regardless of the thread schedule, so parallel runs are
// bit-identical to serial ones.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "obs/observer.hpp"
#include "stats/table.hpp"

namespace speakup::exp {

/// Per-run observability output, rendered inside the worker so assembly by
/// the caller is pure string concatenation in job-index order (and thus
/// deterministic across thread counts). All fields empty when
/// observability is off.
struct RunTelemetry {
  std::string metrics_json;    // this run's metrics summary (one JSON object)
  std::string timeseries_csv;  // "index,label,metric,time_s,value" rows, no header
  std::string trace_json;      // Chrome trace event objects, comma-separated,
                               // pid = this run's job index
};

struct RunOutcome {
  std::string label;
  ScenarioConfig config;
  ExperimentResult result;
  RunTelemetry telemetry;
  std::string error;  // non-empty when the scenario threw
  [[nodiscard]] bool ok() const { return error.empty(); }
};

class Runner {
 public:
  Runner() = default;

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Queues one scenario. An empty label defaults to "<defense>/<index>".
  /// Labels must be unique (result() looks them up).
  Runner& add(ScenarioConfig cfg, std::string label = "");

  /// Queues `n_seeds` copies of `base` with seeds base.seed .. base.seed +
  /// n_seeds - 1, labeled "<label>/seed<k>".
  Runner& add_seed_sweep(ScenarioConfig base, int n_seeds, const std::string& label = "");

  /// Grid helper for the paper's staple x-axis (Figure 2): for each g in
  /// `good_counts`, queues lan_scenario(g, total_clients - g, ...) labeled
  /// "<label>/g<g>" (empty label -> the defense name; pass distinct labels
  /// to sweep the same mode twice on one Runner).
  Runner& sweep_good_fraction(int total_clients, const std::vector<int>& good_counts,
                              double capacity_rps, DefenseMode mode, Duration duration,
                              std::uint64_t seed = 1, const std::string& label = "");

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  /// Attaches an obs::Observer with these options to every run; each
  /// outcome's `telemetry` then carries that run's rendered output.
  /// Scenario results — including fingerprints — are identical with or
  /// without observability (the probes only read, and sampling adds no
  /// events). Call before run_all.
  Runner& set_observability(const obs::Observer::Options& opts);

  /// External indices stamped into telemetry output (trace pid, timeseries
  /// rows) — e.g. global scenario indices when running a shard. Defaults to
  /// the job position. Size must equal size() when run_all is called.
  Runner& set_telemetry_indices(std::vector<std::size_t> indices);

  /// Runs every queued scenario and returns the outcomes in insertion
  /// order. `n_threads` <= 0 means hardware concurrency. Callable once.
  const std::vector<RunOutcome>& run_all(int n_threads = 0);

  /// Outcomes of the completed run (run_all must have been called).
  [[nodiscard]] const std::vector<RunOutcome>& outcomes() const;
  [[nodiscard]] const RunOutcome& outcome(std::string_view label) const;
  /// Shorthand for outcome(label).result; throws if that scenario failed.
  [[nodiscard]] const ExperimentResult& result(std::string_view label) const;

  /// One row per outcome: label, defense, served counts, allocations, the
  /// fraction-served metric, and run metadata.
  [[nodiscard]] stats::Table summary_table() const;

 private:
  struct Job {
    std::string label;
    ScenarioConfig config;
  };

  std::vector<Job> jobs_;
  std::vector<RunOutcome> outcomes_;
  obs::Observer::Options obs_opts_{};
  std::vector<std::size_t> telemetry_indices_;
  bool obs_enabled_ = false;
  bool ran_ = false;
};

}  // namespace speakup::exp
