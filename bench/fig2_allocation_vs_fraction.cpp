// Figure 2: server allocation to good clients as a function of their
// fraction f of the total client bandwidth. 50 clients x 2 Mbit/s on a LAN,
// c = 100 requests/s. Series: with speak-up, without speak-up, ideal (f).
//
// The grid lives in scenarios/fig2.json — the same file `speakup run`
// executes — so the bench and the CLI reproduce identical numbers.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/theory.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_io.hpp"
#include "stats/table.hpp"

int main() {
  using namespace speakup;
  bench::print_banner("Figure 2", "server allocation vs good clients' bandwidth fraction");
  bench::print_paper_note(
      "the speak-up series hugs the ideal line (good clients capture ~f of the "
      "server); without speak-up, bad clients at lambda=40, w=20 capture far more");

  exp::ScenarioFile file = bench::load_scenarios("fig2.json");
  bench::apply_full_duration(file);

  // The x-axis comes from the file itself (one point per "none" scenario),
  // so editing the JSON grid never leaves this report stale.
  std::vector<int> goods;
  int total_clients = 0;
  for (const exp::LabeledScenario& s : file.scenarios) {
    if (s.config.defense_name() != "none") continue;
    total_clients = 0;
    for (const exp::ClientGroupSpec& g : s.config.groups) {
      total_clients += g.count;
      if (g.label == "good") goods.push_back(g.count);
    }
  }

  exp::Runner runner;
  file.queue_on(runner);
  bench::run_all(runner);

  stats::Table table({"f=G/(G+B)", "without-speakup", "with-speakup", "ideal"});
  for (const int good : goods) {
    const double f = static_cast<double>(good) / total_clients;
    const std::string g = "/g" + std::to_string(good);
    table.row()
        .add(f, 2)
        .add(runner.result("none" + g).allocation_good, 3)
        .add(runner.result("auction" + g).allocation_good, 3)
        .add(core::theory::ideal_good_allocation(f, 1.0 - f), 3);
  }
  table.print(std::cout);
  return 0;
}
